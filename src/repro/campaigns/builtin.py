"""Named campaign registry plus the built-in paper-figure campaigns.

Mirrors the scenario registry idiom: a campaign is a zero-argument
factory registered under a name, and the CLI (``repro campaign
list/run/status/report``) resolves names here.  The three built-ins
reproduce the paper's core results end to end from the store:

* ``fig-ber-vs-distance`` — both directions' BER across tag
  separation: the feedback direction's coding-gain advantage (the
  asymmetry ratio ``r`` integrates 64 chips per feedback bit) is the
  paper's enabling observation;
* ``fig-goodput-vs-load`` — FD early-abort versus HD ARQ goodput as
  offered load grows: the headline protocol claim, with the no-ARQ
  ALOHA arm as the contention baseline;
* ``fig-energy-vs-range`` — harvested income versus per-delivered
  transmit cost across range, reduced to the sustainable report rate:
  the paper's energy argument as one curve.
"""

from __future__ import annotations

from typing import Callable

from repro.campaigns.spec import CampaignSpec

_CAMPAIGNS: dict[str, Callable[[], CampaignSpec]] = {}


def register_campaign(
    name: str, factory: Callable[[], CampaignSpec]
) -> None:
    """Register ``factory`` under ``name`` (duplicates are an error)."""
    if name in _CAMPAIGNS:
        raise ValueError(f"campaign {name!r} already registered")
    _CAMPAIGNS[name] = factory


def campaign(name: str):
    """Decorator form of :func:`register_campaign`."""

    def decorate(factory: Callable[[], CampaignSpec]):
        register_campaign(name, factory)
        return factory

    return decorate


def get_campaign(name: str) -> CampaignSpec:
    """Build the named campaign's spec (fresh instance each call)."""
    if name not in _CAMPAIGNS:
        raise ValueError(
            f"unknown campaign {name!r}; choose from {campaign_names()}"
        )
    return _CAMPAIGNS[name]()


def campaign_names() -> list[str]:
    """All registered campaign names, sorted."""
    return sorted(_CAMPAIGNS)


def describe_campaigns() -> list[tuple[str, str]]:
    """``(name, description)`` rows for every campaign, sorted."""
    return [
        (name, get_campaign(name).description) for name in campaign_names()
    ]


# ---------------------------------------------------------------------------
# Built-in paper-figure campaigns.
# ---------------------------------------------------------------------------

#: Tag separations [m] the range figures sweep — near field to past the
#: operating edge (the far-edge preset sits at 2.5 m).
RANGE_GRID_M = (0.25, 0.5, 1.0, 1.5, 2.0, 2.5)


@campaign("fig-ber-vs-distance")
def _fig_ber_vs_distance() -> CampaignSpec:
    return CampaignSpec(
        name="fig-ber-vs-distance",
        description="forward and feedback BER vs tag separation "
        "(the rate-asymmetry observation)",
        scenario="calibrated-default",
        grid={"distance_m": RANGE_GRID_M},
        kinds=("forward-ber", "feedback-ber"),
        n_trials=60,
        seed=0,
    )


@campaign("fig-goodput-vs-load")
def _fig_goodput_vs_load() -> CampaignSpec:
    return CampaignSpec(
        name="fig-goodput-vs-load",
        description="FD early-abort vs HD ARQ vs ALOHA goodput across "
        "offered load (the headline protocol claim)",
        scenario="calibrated-default",
        overrides={
            "mac_num_links": 12,
            "mac_payload_bytes": 32,
            "mac_loss_probability": 0.1,
        },
        grid={"mac_arrival_rate_pps": (0.1, 0.25, 0.5, 0.75, 1.0)},
        kinds=("mac",),
        arms={
            "no-arq": {"mac_policy": "no-arq"},
            "hd-arq": {"mac_policy": "hd-arq"},
            "fd-abort": {"mac_policy": "fd-abort"},
        },
        n_trials=5,
        seed=0,
    )


@campaign("fig-energy-vs-range")
def _fig_energy_vs_range() -> CampaignSpec:
    return CampaignSpec(
        name="fig-energy-vs-range",
        description="harvest income, energy per delivered frame and "
        "sustainable report rate vs range (the energy argument)",
        scenario="calibrated-default",
        grid={"distance_m": RANGE_GRID_M},
        kinds=("energy",),
        n_trials=40,
        seed=0,
    )
