"""Canonical result keys: what identifies a cached experiment.

A stored table is reusable only if *everything* that determines its
records is folded into its address.  Under the runner's seeding
contract (DESIGN §7) the records of a fixed-budget run are a pure
function of exactly five inputs, and the key hashes all five:

1. the scenario — ``ScenarioSpec.to_dict()``, canonicalised;
2. the trial kind — the registered metric name (``"forward-ber"``,
   ``"mac"``, …) or the trial function's dotted path;
3. the trial budget ``n_trials`` (runs must be fixed-budget: adaptive
   stopping makes the realised records depend on the stop rule, so
   :func:`repro.store.cache.cached_run` refuses ``stop_when``);
4. the root seed;
5. the code version — simulation changes must not satisfy stale
   entries, so :data:`CODE_VERSION` (``repro.__version__``) is part of
   the address and the contract is *bump the version when the
   simulation output changes* (the golden fixtures enforce the same
   boundary).

The backend, worker count and chunk size are deliberately **not** in
the key: backends are execution details, not result identity.  Every
backend is bitwise identical for the same seed on every kind except
``mac``, whose vectorized path is a slotted engine that is
statistically rather than bitwise equivalent (DESIGN §7) — a stored
``mac`` table is one valid realisation of the keyed experiment,
whichever backend wrote it first.

Because ``n_trials`` enters the hash last, every key also carries a
*base* digest over the other four inputs.  Entries sharing a base are
prefixes of one infinite trial sequence (trial ``i`` depends only on
the root seed and ``i``), which is what makes the store's top-up and
truncation contracts sound (see :mod:`repro.store.store`).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro import __version__
from repro.experiments.spec import ScenarioSpec

#: Code version folded into every result key.  Bump
#: ``repro.__version__`` whenever a change alters simulation output;
#: stale cache entries then simply stop being addressable.
CODE_VERSION = __version__


def canonical_json(obj: object) -> str:
    """The one JSON text a JSON-able value canonicalises to.

    Sorted keys, no whitespace, ASCII-only, and ``allow_nan=False`` so a
    non-finite float is an error instead of a non-standard token.
    Python floats serialise via ``repr`` (shortest round-trip), so equal
    floats always produce identical text and parsing the text back
    yields bitwise-equal values — the property the spec stability test
    pins down.
    """
    return json.dumps(
        obj,
        sort_keys=True,
        separators=(",", ":"),
        ensure_ascii=True,
        allow_nan=False,
    )


def canonical_seed(
    seed: int | np.integer[Any] | np.random.SeedSequence,
) -> int | list[int] | dict[str, object]:
    """JSON-safe canonical form of a root seed (int or SeedSequence).

    A ``SeedSequence`` is more than its entropy: a spawned child
    (non-empty ``spawn_key``) or a root that has already spawned
    children (``n_children_spawned > 0``) yields *different* trial
    streams than a pristine root with the same entropy, so collapsing
    them to the entropy alone would let distinct runs share one cache
    address.  A pristine root canonicalises to its entropy (equal to
    the plain-int form the CLI and campaigns use); anything else
    carries its full spawn state.
    """
    if isinstance(seed, np.random.SeedSequence):
        raw_entropy = seed.entropy
        if raw_entropy is None:
            raise TypeError("SeedSequence has no entropy to canonicalise")
        entropy: int | list[int]
        if isinstance(raw_entropy, (int, np.integer)):
            entropy = int(raw_entropy)
        else:
            entropy = [int(e) for e in raw_entropy]
        spawn_key = [int(k) for k in seed.spawn_key]
        spawned = int(seed.n_children_spawned)
        if not spawn_key and not spawned:
            return entropy
        return {
            "entropy": entropy,
            "spawn_key": spawn_key,
            "children_spawned": spawned,
        }
    if isinstance(seed, (int, np.integer)):
        return int(seed)
    raise TypeError(
        f"seed must be an int or numpy SeedSequence, got {type(seed).__name__}"
    )


def trial_kind_of(trial: Callable[..., object]) -> str:
    """The stable name a trial function is keyed under.

    Registered standard trials use their metric name from
    :data:`repro.experiments.TRIAL_KINDS`; custom trials fall back to
    their dotted import path (stable as long as the function does not
    move — moving it is a legitimate cache invalidation).
    """
    from repro.experiments import TRIAL_KINDS

    for name, fn in TRIAL_KINDS.items():
        if fn is trial:
            return name
    module = getattr(trial, "__module__", "unknown")
    qualname = getattr(trial, "__qualname__", repr(trial))
    return f"{module}.{qualname}"


@dataclass(frozen=True)
class ResultKey:
    """Content address of one fixed-budget run.

    Attributes
    ----------
    base:
        Hex digest over (scenario, trial kind, seed, code version) —
        the identity of the *trial sequence*.
    n_trials:
        The budget; entries with equal ``base`` and different budgets
        are prefixes of each other.
    digest:
        Hex digest over the base material plus ``n_trials`` — the full
        content address of the stored table.
    kind / seed / code_version:
        The human-readable key components (carried for metadata).
    """

    base: str
    n_trials: int
    digest: str
    kind: str
    seed: object
    code_version: str

    def at_budget(self, n_trials: int) -> "ResultKey":
        """The key of the same trial sequence at another budget."""
        if n_trials < 1:
            raise ValueError("n_trials must be positive")
        return ResultKey(
            base=self.base,
            n_trials=int(n_trials),
            digest=_full_digest(self.base, int(n_trials)),
            kind=self.kind,
            seed=self.seed,
            code_version=self.code_version,
        )


def _full_digest(base: str, n_trials: int) -> str:
    return hashlib.sha256(
        f"{base}:n_trials={n_trials}".encode("ascii")
    ).hexdigest()


def result_key(
    spec: ScenarioSpec,
    trial_kind: str | Callable[..., object],
    n_trials: int,
    seed: int | np.integer[Any] | np.random.SeedSequence,
    code_version: str | None = None,
) -> ResultKey:
    """The content address of ``n_trials`` trials of ``spec``.

    ``trial_kind`` may be a registered kind name or the trial callable
    itself (resolved via :func:`trial_kind_of`).
    """
    if not isinstance(trial_kind, str):
        trial_kind = trial_kind_of(trial_kind)
    if n_trials < 1:
        raise ValueError("n_trials must be positive")
    version = CODE_VERSION if code_version is None else str(code_version)
    seed_c = canonical_seed(seed)
    base_doc = canonical_json(
        {
            "scenario": spec.to_dict(),
            "kind": trial_kind,
            "seed": seed_c,
            "code_version": version,
        }
    )
    base = hashlib.sha256(base_doc.encode("ascii")).hexdigest()
    full = _full_digest(base, int(n_trials))
    return ResultKey(
        base=base,
        n_trials=int(n_trials),
        digest=full,
        kind=trial_kind,
        seed=seed_c,
        code_version=version,
    )
