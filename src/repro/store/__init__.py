"""Content-addressed persistence of experiment results.

Every fixed-budget run of the experiment runner is a pure function of
``(scenario, trial kind, n_trials, seed, code version)`` — so results
can be *addressed by* those five inputs instead of recomputed.  This
package owns that address space:

* :mod:`repro.store.keys` — :func:`canonical_json` (the one JSON text a
  spec dict canonicalises to) and :func:`result_key` (the sha256
  content address, split into a trial-sequence ``base`` and a
  per-budget ``digest``);
* :mod:`repro.store.codec` — the versioned binary payload format
  (``.rpt``): numeric columns as raw little-endian buffers, everything
  else strict JSON; unreadable payloads raise :class:`CodecError`;
* :mod:`repro.store.store` — :class:`ResultStore`, ``get``/``put``/
  ``has`` of :class:`~repro.experiments.results.ResultTable` binary
  payloads under ``~/.cache/repro`` (override with ``--store`` or
  ``$REPRO_STORE``), plus the prefix queries behind truncation and
  top-up; legacy JSON entries are read and migrated transparently;
* :mod:`repro.store.cache` — :func:`cached_run`, which satisfies a
  runner request from the store, computing only the missing trial
  suffix (the *incremental top-up* contract).

Quickstart::

    from repro.experiments import ExperimentRunner, forward_ber_trial
    from repro.experiments import get_scenario
    from repro.store import ResultStore, cached_run

    store = ResultStore("/tmp/mystore")
    runner = ExperimentRunner(trial=forward_ber_trial, max_trials=500)
    first = cached_run(store, runner, get_scenario("calibrated-default"))
    # …later, a bigger budget reuses the 500 cached trials:
    runner = ExperimentRunner(trial=forward_ber_trial, max_trials=2000)
    more = cached_run(store, runner, get_scenario("calibrated-default"))
    assert more.outcome == "topup" and more.trials_computed == 1500

:mod:`repro.campaigns` builds the named, resumable sweep layer on top.
"""

from repro.store.cache import OUTCOMES, CachedRun, cached_run, canonical_table
from repro.store.codec import CODEC_VERSION, CodecError
from repro.store.keys import (
    CODE_VERSION,
    ResultKey,
    canonical_json,
    canonical_seed,
    result_key,
    trial_kind_of,
)
from repro.store.store import (
    DEFAULT_ROOT,
    STORE_ENV,
    ResultStore,
    default_store_root,
)

__all__ = [
    "CODEC_VERSION",
    "CODE_VERSION",
    "CodecError",
    "DEFAULT_ROOT",
    "OUTCOMES",
    "STORE_ENV",
    "CachedRun",
    "ResultKey",
    "ResultStore",
    "cached_run",
    "canonical_json",
    "canonical_seed",
    "canonical_table",
    "default_store_root",
    "result_key",
    "trial_kind_of",
]
