"""Cache-aware execution: run only the trials the store is missing.

:func:`cached_run` is the contract between the store and
:class:`~repro.experiments.runner.ExperimentRunner`:

* **exact hit** — the requested budget is stored: zero trials run;
* **truncation** — a *larger* budget of the same trial sequence is
  stored: slice its first ``n`` records, store the slice, zero trials
  run;
* **top-up** — a *smaller* budget ``n0 < n`` is stored: run only trials
  ``n0 … n-1`` (the runner fast-forwards the root ``SeedSequence`` by
  ``n0`` children, so the new records are bitwise what a cold run would
  have produced at those indices), concatenate, store;
* **miss** — nothing stored: run all ``n`` trials, store.

All four paths return byte-identical stored payloads for the same key
(the binary codec encode is deterministic) — the acceptance property
the campaign tests pin down.  Both prefix
tricks are sound only because a fixed-budget run's record ``i`` is a
pure function of ``(spec, root seed, i)`` (DESIGN §7); adaptive
stopping breaks that, so a runner with ``stop_when`` set is refused.

Stored tables carry *canonical* metadata — scenario, kind, budget,
seed, code version, key — and deliberately nothing about how they were
computed (backend, workers, chunking, topped-up-or-cold are execution
details that must not make equal results compare unequal).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.experiments.results import ResultTable
from repro.store.keys import ResultKey, result_key
from repro.store.store import ResultStore

#: ``CachedRun.outcome`` values, from cheapest to most expensive.
OUTCOMES = ("hit", "truncated", "topup", "miss")


@dataclass(frozen=True)
class CachedRun:
    """What :func:`cached_run` did for one request.

    Attributes
    ----------
    table:
        The full requested-budget table (identical to a cold run).
    outcome:
        One of :data:`OUTCOMES`.
    trials_computed:
        How many trials actually executed (0 for hit/truncated).
    key:
        The content address the table is stored under.
    """

    table: ResultTable
    outcome: str
    trials_computed: int
    key: ResultKey


def canonical_table(key: ResultKey, spec, records) -> ResultTable:
    """The one stored form of ``records`` under ``key``.

    Metadata is rebuilt from the key alone so hit, truncation, top-up
    and miss all serialise to identical bytes.
    """
    table = ResultTable(
        metadata={
            "kind": key.kind,
            "n_trials": key.n_trials,
            "scenario": spec.to_dict(),
            "seed": key.seed,
            "code_version": key.code_version,
            "store_key": key.digest,
        }
    )
    table.extend(records)
    return table


def cached_run(
    store: ResultStore,
    runner,
    spec,
    seed=0,
    *,
    code_version: str | None = None,
) -> CachedRun:
    """Satisfy ``runner.run(spec, seed)`` from ``store``, topping up.

    ``runner`` must be fixed-budget (``stop_when is None``): the cache
    key asserts the table holds exactly ``max_trials`` records, which an
    adaptive stop cannot guarantee.
    """
    if runner.stop_when is not None:
        raise ValueError(
            "cached_run requires a fixed trial budget; a runner with "
            "stop_when set produces seed-and-rule-dependent record "
            "counts that cannot be content-addressed (run it without "
            "a store instead)"
        )
    n = runner.max_trials
    key = result_key(spec, runner.trial, n, seed, code_version)

    with obs.span("store.cached_run", key=key.digest, n_trials=n) as sp:
        result = _cached_run(store, runner, spec, seed, key, n)
        sp.note(outcome=result.outcome, trials_computed=result.trials_computed)
        obs.inc(f"cached_run.{result.outcome}")
        obs.inc("cached_run.trials_computed", result.trials_computed)
        return result


def _cached_run(store, runner, spec, seed, key, n) -> CachedRun:
    exact = store.get(key)
    if exact is not None:
        return CachedRun(exact, "hit", 0, key)

    prior = store.best_prefix(key)
    if prior is not None and len(prior) >= n:
        table = canonical_table(key, spec, prior.records[:n])
        store.put(key, table)
        return CachedRun(table, "truncated", 0, key)

    if prior is not None:
        n0 = len(prior)
        fresh = runner.run(spec, seed=seed, first_trial=n0)
        table = canonical_table(key, spec, prior.records + fresh.records)
        store.put(key, table)
        return CachedRun(table, "topup", len(fresh), key)

    cold = runner.run(spec, seed=seed)
    table = canonical_table(key, spec, cold.records)
    store.put(key, table)
    return CachedRun(table, "miss", len(cold), key)
