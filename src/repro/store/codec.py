"""Binary on-disk codec for :class:`ResultTable` (store format ``.rpt``).

The JSON store payloads the first store generation wrote spent most of
their put/get time in ``json.dumps``/``json.loads`` re-typing every
scalar of every record.  This codec serialises the table the way it is
now held in memory — per-column typed arrays — so numeric columns round
trip as raw little-endian buffers (one ``tobytes``/``frombuffer`` pair
per column) and only object columns and metadata pay the JSON tax.

Layout (all integers little-endian)::

    bytes 0..3    MAGIC  b"RPT1"
    bytes 4..5    codec version (u16)
    bytes 6..9    header length H (u32)
    bytes 10..    header: UTF-8 JSON (strict; non-finite floats use the
                  ``$nonfinite`` sentinel encoding of
                  :mod:`repro.experiments.results`)
    then          column payloads, concatenated in header order

Header document::

    {"n": <record count>,
     "metadata": <table metadata, sentinel-encoded>,
     "columns": [{"name": …, "kind": "b1"|"i8"|"f8"|"json",
                  "nbytes": <payload size>}, …]}

Numeric payloads are the raw array bytes (``b1`` bool, ``i8`` int64,
``f8`` float64 — NaN/Inf survive bitwise for free).  ``json`` payloads
are a sentinel-encoded JSON list of the column's python values.

The codec is versioned *independently* of the result address space:
:data:`CODEC_VERSION` bumps when these bytes change shape, while
``repro.store.keys.CODE_VERSION`` bumps when the simulation itself
changes.  A payload from a different codec version raises
:class:`CodecError`, which :class:`~repro.store.store.ResultStore`
treats as a cache miss — never as a crash in a campaign run.
"""

from __future__ import annotations

import json
import struct

import numpy as np

from repro.experiments.results import (
    ResultTable,
    decode_nonfinite,
    encode_nonfinite,
)

#: First four bytes of every ``.rpt`` payload.
MAGIC = b"RPT1"

#: Version of the binary layout (not of the simulation — that is
#: ``CODE_VERSION``).  Bump on any change to these bytes.
CODEC_VERSION = 1

_HEADER = struct.Struct("<4sHI")

#: dtype ↔ column-kind tags for raw numeric payloads.
_KIND_OF_DTYPE = {
    np.dtype(np.bool_): "b1",
    np.dtype(np.int64): "i8",
    np.dtype(np.float64): "f8",
}
_DTYPE_OF_KIND = {
    "b1": np.dtype(np.bool_),
    "i8": np.dtype("<i8"),
    "f8": np.dtype("<f8"),
}


class CodecError(ValueError):
    """Unreadable binary payload (corrupt, truncated, wrong version)."""


def encode(table: ResultTable) -> bytes:
    """``table`` as a self-contained binary payload.

    Deterministic: equal tables encode to equal bytes, which is what
    keeps the store's four ``cached_run`` outcomes byte-identical on
    disk.
    """
    specs = []
    payloads = []
    for name in table.columns:
        values = table.array(name)
        kind = _KIND_OF_DTYPE.get(values.dtype)
        if kind is None:
            blob = json.dumps(
                encode_nonfinite(table.column(name)),
                separators=(",", ":"),
                allow_nan=False,
            ).encode("utf-8")
            kind = "json"
        else:
            blob = values.astype(f"<{kind}", copy=False).tobytes()
        specs.append({"name": name, "kind": kind, "nbytes": len(blob)})
        payloads.append(blob)
    header = json.dumps(
        {
            "n": len(table),
            "metadata": encode_nonfinite(table.metadata),
            "columns": specs,
        },
        separators=(",", ":"),
        allow_nan=False,
    ).encode("utf-8")
    return b"".join(
        [_HEADER.pack(MAGIC, CODEC_VERSION, len(header)), header, *payloads]
    )


def decode(blob: bytes) -> ResultTable:
    """Inverse of :func:`encode`.

    Raises
    ------
    CodecError
        On any malformed payload: wrong magic, unknown codec version,
        truncation, or a header/payload that does not parse.  Callers
        (the store) turn this into a cache miss.
    """
    if len(blob) < _HEADER.size:
        raise CodecError(f"payload too short ({len(blob)} bytes)")
    magic, version, header_len = _HEADER.unpack_from(blob)
    if magic != MAGIC:
        raise CodecError(f"bad magic {magic!r}")
    if version != CODEC_VERSION:
        raise CodecError(
            f"codec version {version} (this build reads {CODEC_VERSION})"
        )
    offset = _HEADER.size
    if len(blob) < offset + header_len:
        raise CodecError("truncated header")
    try:
        header = json.loads(blob[offset:offset + header_len])
        n = int(header["n"])
        metadata = decode_nonfinite(dict(header["metadata"]))
        specs = list(header["columns"])
    except (ValueError, KeyError, TypeError) as exc:
        raise CodecError(f"unreadable header: {exc}") from exc
    offset += header_len
    names = []
    arrays = []
    for spec in specs:
        try:
            name, kind, nbytes = spec["name"], spec["kind"], int(spec["nbytes"])
        except (KeyError, TypeError, ValueError) as exc:
            raise CodecError(f"unreadable column spec {spec!r}") from exc
        if len(blob) < offset + nbytes:
            raise CodecError(f"truncated payload for column {name!r}")
        payload = blob[offset:offset + nbytes]
        offset += nbytes
        if kind == "json":
            try:
                values = decode_nonfinite(json.loads(payload))
            except ValueError as exc:
                raise CodecError(
                    f"unreadable object column {name!r}: {exc}"
                ) from exc
        else:
            dtype = _DTYPE_OF_KIND.get(kind)
            if dtype is None:
                raise CodecError(f"unknown column kind {kind!r}")
            if nbytes != n * dtype.itemsize:
                raise CodecError(
                    f"column {name!r} holds {nbytes} bytes, "
                    f"expected {n * dtype.itemsize}"
                )
            values = np.frombuffer(payload, dtype=dtype)
        if len(values) != n:
            raise CodecError(
                f"column {name!r} holds {len(values)} values, expected {n}"
            )
        names.append(name)
        arrays.append(values)
    try:
        table = ResultTable._from_columns(names, arrays, metadata)
    except ValueError as exc:
        raise CodecError(str(exc)) from exc
    table._size = n
    return table
