"""Content-addressed on-disk store of :class:`ResultTable`\\ s.

Layout::

    <root>/
      results/<base[:2]>/<base>/trials-<n>.rpt    one table per budget
      campaigns/<name>.json                       campaign checkpoints

Result payloads are binary (``.rpt``, :mod:`repro.store.codec`) —
roughly an order of magnitude faster to put/get than the JSON documents
the first store generation wrote.  Legacy ``trials-<n>.json`` entries
stay readable: ``get`` falls back to them and migrates them to ``.rpt``
on first read (the JSON file is left behind for human inspection).
JSON remains the *export* format — ``table.to_json()`` — it is just no
longer the storage format.

``base`` is the :class:`~repro.store.keys.ResultKey` base digest — the
identity of a trial *sequence* — and each file under it holds the
table of one fixed budget of that sequence.  Because trial ``i`` of a
sequence is independent of the budget (DESIGN §7: per-trial seed
streams are spawned by index), the entries under one base are prefixes
of each other, which the store exploits two ways:

* **truncation** — a cached 2000-trial table answers a 500-trial
  request by slicing its first 500 records;
* **top-up** — a cached 500-trial table answers a 2000-trial request
  by computing only trials 500…1999 (the caller's job; the store just
  reports the best prefix via :meth:`ResultStore.best_prefix`).

Writes are atomic (temp file + ``os.replace``) so a killed campaign
never leaves a half-written table behind.  Reads are defensive: a
truncated, corrupt or wrong-codec-version payload is **a logged cache
miss, never an exception** — a damaged store entry costs a recompute,
not a campaign crash, and the next ``put`` overwrites it.
"""

from __future__ import annotations

import logging
import os
import pathlib

from repro import obs
from repro.experiments.results import ResultTable
from repro.store.codec import CodecError, decode, encode
from repro.store.keys import ResultKey

log = logging.getLogger("repro.store")

#: Environment variable overriding the default store location.
STORE_ENV = "REPRO_STORE"

#: Default store root when neither ``--store`` nor the env var is set.
DEFAULT_ROOT = "~/.cache/repro"

#: Suffix of binary result payloads (current format).
RESULT_SUFFIX = ".rpt"

#: Suffix of first-generation JSON payloads (read-only fallback).
LEGACY_SUFFIX = ".json"


def default_store_root() -> pathlib.Path:
    """``$REPRO_STORE`` if set, else ``~/.cache/repro``."""
    return pathlib.Path(
        os.environ.get(STORE_ENV) or DEFAULT_ROOT
    ).expanduser()


def _atomic_write(path: pathlib.Path, text: str) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(text)
    os.replace(tmp, path)


def _atomic_write_bytes(path: pathlib.Path, blob: bytes) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_bytes(blob)
    os.replace(tmp, path)


class ResultStore:
    """get/put/has of result tables, addressed by :class:`ResultKey`.

    Parameters
    ----------
    root:
        Store directory (created lazily on first write).  ``None``
        selects :func:`default_store_root`.
    """

    def __init__(self, root: str | pathlib.Path | None = None) -> None:
        self.root = (
            pathlib.Path(root).expanduser()
            if root is not None
            else default_store_root()
        )

    def __repr__(self) -> str:
        return f"ResultStore({str(self.root)!r})"

    # -- paths ---------------------------------------------------------------

    def _base_dir(self, key: ResultKey) -> pathlib.Path:
        return self.root / "results" / key.base[:2] / key.base

    def path_for(self, key: ResultKey) -> pathlib.Path:
        """Where the exact-budget table of ``key`` lives (or would)."""
        return self._base_dir(key) / f"trials-{key.n_trials}{RESULT_SUFFIX}"

    def legacy_path_for(self, key: ResultKey) -> pathlib.Path:
        """Where a first-generation JSON payload of ``key`` would live."""
        return self._base_dir(key) / f"trials-{key.n_trials}{LEGACY_SUFFIX}"

    def campaign_dir(self) -> pathlib.Path:
        """Where campaign checkpoints live."""
        return self.root / "campaigns"

    # -- exact-budget access -------------------------------------------------

    def has(self, key: ResultKey) -> bool:
        """Whether the exact budget of ``key`` is stored."""
        return (
            self.path_for(key).is_file()
            or self.legacy_path_for(key).is_file()
        )

    def get(self, key: ResultKey) -> ResultTable | None:
        """The stored table for ``key``'s exact budget, else ``None``.

        Unreadable payloads (truncated, corrupt, wrong codec version)
        are logged and reported as a miss — the caller recomputes and
        the next ``put`` repairs the entry.  A readable legacy JSON
        payload is migrated to the binary format on the way out.
        """
        with obs.span("store.get", key=key.digest, n_trials=key.n_trials) as sp:
            path = self.path_for(key)
            if path.is_file():
                try:
                    table = decode(path.read_bytes())
                except (CodecError, OSError) as exc:
                    obs.inc("store.corrupt")
                    sp.note(result="corrupt")
                    log.warning(
                        "store entry %s (key %s) is unreadable (%s); "
                        "treating as a miss",
                        path, key.digest, exc,
                    )
                    return None
                obs.inc("store.get.hit")
                sp.note(result="hit")
                return table
            legacy = self.legacy_path_for(key)
            if legacy.is_file():
                try:
                    table = ResultTable.from_json(legacy.read_text())
                except (ValueError, KeyError, TypeError, UnicodeDecodeError,
                        OSError) as exc:
                    obs.inc("store.corrupt")
                    sp.note(result="corrupt")
                    log.warning(
                        "legacy store entry %s (key %s) is unreadable (%s); "
                        "treating as a miss",
                        legacy, key.digest, exc,
                    )
                    return None
                _atomic_write_bytes(path, encode(table))
                obs.inc("store.get.migrated")
                sp.note(result="migrated")
                return table
            obs.inc("store.get.miss")
            sp.note(result="miss")
            return None

    def put(self, key: ResultKey, table: ResultTable) -> pathlib.Path:
        """Store ``table`` under ``key`` (atomic; returns the path).

        The table must actually hold ``key.n_trials`` records — storing
        a mislabelled table would poison every later truncation and
        top-up against this base.
        """
        if len(table) != key.n_trials:
            raise ValueError(
                f"table has {len(table)} records but the key says "
                f"{key.n_trials} trials"
            )
        with obs.span("store.put", key=key.digest, n_trials=key.n_trials):
            obs.inc("store.put")
            path = self.path_for(key)
            _atomic_write_bytes(path, encode(table))
            return path

    # -- prefix queries (top-up / truncation) --------------------------------

    def stored_budgets(self, key: ResultKey) -> list[int]:
        """All budgets stored under ``key``'s base, ascending.

        Binary and legacy payloads both count; a budget present in both
        formats is listed once.
        """
        base = self._base_dir(key)
        if not base.is_dir():
            return []
        budgets = set()
        for entry in base.iterdir():
            name = entry.name
            for suffix in (RESULT_SUFFIX, LEGACY_SUFFIX):
                if name.startswith("trials-") and name.endswith(suffix):
                    try:
                        budgets.add(int(name[len("trials-"):-len(suffix)]))
                    except ValueError:
                        pass
                    break
        return sorted(budgets)

    def best_prefix(self, key: ResultKey) -> ResultTable | None:
        """The most useful stored table for ``key``'s trial sequence.

        Preference order: the exact budget; else the *smallest* stored
        budget above it (cheapest truncation); else the *largest*
        stored budget below it (best top-up start).  ``None`` when the
        base is empty.  An unreadable payload drops out of the running
        (with a ``get`` warning) and the next-best budget is tried.
        """
        budgets = self.stored_budgets(key)
        while budgets:
            if key.n_trials in budgets:
                best = key.n_trials
            else:
                above = [n for n in budgets if n > key.n_trials]
                below = [n for n in budgets if n < key.n_trials]
                best = min(above) if above else max(below)
            table = self.get(key.at_budget(best))
            if table is not None:
                return table
            budgets.remove(best)
        return None
