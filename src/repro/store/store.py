"""Content-addressed on-disk store of :class:`ResultTable`\\ s.

Layout (everything JSON, everything human-inspectable)::

    <root>/
      results/<base[:2]>/<base>/trials-<n>.json   one table per budget
      campaigns/<name>.json                       campaign checkpoints

``base`` is the :class:`~repro.store.keys.ResultKey` base digest — the
identity of a trial *sequence* — and each file under it holds the
table of one fixed budget of that sequence.  Because trial ``i`` of a
sequence is independent of the budget (DESIGN §7: per-trial seed
streams are spawned by index), the entries under one base are prefixes
of each other, which the store exploits two ways:

* **truncation** — a cached 2000-trial table answers a 500-trial
  request by slicing its first 500 records;
* **top-up** — a cached 500-trial table answers a 2000-trial request
  by computing only trials 500…1999 (the caller's job; the store just
  reports the best prefix via :meth:`ResultStore.best_prefix`).

Writes are atomic (temp file + ``os.replace``) so a killed campaign
never leaves a half-written table behind.
"""

from __future__ import annotations

import os
import pathlib

from repro.experiments.results import ResultTable
from repro.store.keys import ResultKey

#: Environment variable overriding the default store location.
STORE_ENV = "REPRO_STORE"

#: Default store root when neither ``--store`` nor the env var is set.
DEFAULT_ROOT = "~/.cache/repro"


def default_store_root() -> pathlib.Path:
    """``$REPRO_STORE`` if set, else ``~/.cache/repro``."""
    return pathlib.Path(
        os.environ.get(STORE_ENV) or DEFAULT_ROOT
    ).expanduser()


def _atomic_write(path: pathlib.Path, text: str) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(text)
    os.replace(tmp, path)


class ResultStore:
    """get/put/has of result tables, addressed by :class:`ResultKey`.

    Parameters
    ----------
    root:
        Store directory (created lazily on first write).  ``None``
        selects :func:`default_store_root`.
    """

    def __init__(self, root: str | pathlib.Path | None = None) -> None:
        self.root = (
            pathlib.Path(root).expanduser()
            if root is not None
            else default_store_root()
        )

    def __repr__(self) -> str:
        return f"ResultStore({str(self.root)!r})"

    # -- paths ---------------------------------------------------------------

    def _base_dir(self, key: ResultKey) -> pathlib.Path:
        return self.root / "results" / key.base[:2] / key.base

    def path_for(self, key: ResultKey) -> pathlib.Path:
        """Where the exact-budget table of ``key`` lives (or would)."""
        return self._base_dir(key) / f"trials-{key.n_trials}.json"

    def campaign_dir(self) -> pathlib.Path:
        """Where campaign checkpoints live."""
        return self.root / "campaigns"

    # -- exact-budget access -------------------------------------------------

    def has(self, key: ResultKey) -> bool:
        """Whether the exact budget of ``key`` is stored."""
        return self.path_for(key).is_file()

    def get(self, key: ResultKey) -> ResultTable | None:
        """The stored table for ``key``'s exact budget, else ``None``."""
        path = self.path_for(key)
        if not path.is_file():
            return None
        return ResultTable.from_json(path.read_text())

    def put(self, key: ResultKey, table: ResultTable) -> pathlib.Path:
        """Store ``table`` under ``key`` (atomic; returns the path).

        The table must actually hold ``key.n_trials`` records — storing
        a mislabelled table would poison every later truncation and
        top-up against this base.
        """
        if len(table) != key.n_trials:
            raise ValueError(
                f"table has {len(table)} records but the key says "
                f"{key.n_trials} trials"
            )
        path = self.path_for(key)
        _atomic_write(path, table.to_json() + "\n")
        return path

    # -- prefix queries (top-up / truncation) --------------------------------

    def stored_budgets(self, key: ResultKey) -> list[int]:
        """All budgets stored under ``key``'s base, ascending."""
        base = self._base_dir(key)
        if not base.is_dir():
            return []
        budgets = []
        for entry in base.iterdir():
            name = entry.name
            if name.startswith("trials-") and name.endswith(".json"):
                try:
                    budgets.append(int(name[len("trials-"):-len(".json")]))
                except ValueError:
                    continue
        return sorted(budgets)

    def best_prefix(self, key: ResultKey) -> ResultTable | None:
        """The most useful stored table for ``key``'s trial sequence.

        Preference order: the exact budget; else the *smallest* stored
        budget above it (cheapest truncation); else the *largest*
        stored budget below it (best top-up start).  ``None`` when the
        base is empty.
        """
        budgets = self.stored_budgets(key)
        if not budgets:
            return None
        if key.n_trials in budgets:
            best = key.n_trials
        else:
            above = [n for n in budgets if n > key.n_trials]
            below = [n for n in budgets if n < key.n_trials]
            best = min(above) if above else max(below)
        return self.get(key.at_budget(best))
