"""Random-number-generator plumbing.

Every stochastic component in :mod:`repro` takes an explicit
:class:`numpy.random.Generator` (or a seed convertible to one) so that
experiments are reproducible and components can be re-seeded independently.
These helpers normalise the accepted inputs and derive independent child
generators for parallel components.
"""

from __future__ import annotations

from typing import Any, TypeAlias

import numpy as np
import numpy.typing as npt

RngLike: TypeAlias = (
    int | np.integer[Any] | np.random.Generator | np.random.SeedSequence | None
)


def ensure_rng(rng: RngLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for any accepted input.

    ``None`` yields a fresh OS-seeded generator; an ``int`` or
    :class:`~numpy.random.SeedSequence` seeds a new generator; an existing
    generator is passed through unchanged.
    """
    if rng is None:
        # This *is* the blessed constructor the RNG005 rule funnels
        # everyone else through, hence the suppressions below.
        return np.random.default_rng()  # repro: noqa[RNG005] -- canonical site
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer, np.random.SeedSequence)):
        return np.random.default_rng(rng)  # repro: noqa[RNG005] -- canonical site
    raise TypeError(
        f"expected None, int, SeedSequence or Generator, got {type(rng).__name__}"
    )


def spawn_rngs(rng: RngLike, count: int) -> list[np.random.Generator]:
    """Derive ``count`` statistically independent child generators.

    Used when one experiment drives several stochastic subsystems (source,
    fading, noise, traffic) that must not share a stream — re-ordering calls
    in one subsystem must not perturb the others.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    base = ensure_rng(rng)
    if hasattr(base, "spawn"):  # numpy >= 1.25
        return list(base.spawn(count))
    return _spawn_via_seed_sequence(base, count)


def _spawn_via_seed_sequence(
    base: np.random.Generator, count: int
) -> list[np.random.Generator]:
    """Fallback for numpy < 1.25 (no ``Generator.spawn``).

    Children must come from ``SeedSequence.spawn`` on the base
    generator's own seed sequence — exactly what ``Generator.spawn``
    does internally — so both paths yield the same independent streams
    and advance the parent identically (spawning touches only the
    sequence's spawn key, never the parent's draw stream).  Deriving
    children from raw 64-bit integer draws instead would both risk
    birthday-bound seed collisions and desynchronise the parent stream
    across numpy versions.
    """
    bit_gen = base.bit_generator
    seed_seq = getattr(bit_gen, "seed_seq", None)
    if seed_seq is None:  # pre-1.19 spelling
        seed_seq = getattr(bit_gen, "_seed_seq", None)
    if seed_seq is None:
        raise TypeError(
            "cannot spawn children: the base generator's bit generator "
            "exposes no seed sequence"
        )
    return [
        # Seeding children straight from SeedSequence.spawn is the
        # ensure_rng(child) code path, spelled out for numpy < 1.25.
        np.random.default_rng(child)  # repro: noqa[RNG005] -- spawn fallback
        for child in seed_seq.spawn(count)
    ]


def random_bits(rng: RngLike, count: int) -> npt.NDArray[np.uint8]:
    """Uniform i.i.d. bits as a ``uint8`` array of 0/1 values."""
    if count < 0:
        raise ValueError("count must be non-negative")
    gen = ensure_rng(rng)
    # The integers() call must keep dtype=np.uint8: the bounded-integer
    # sampler consumes the bit stream differently per dtype, so changing
    # it would silently re-seed every golden fixture.
    return np.asarray(gen.integers(0, 2, size=count, dtype=np.uint8), dtype=np.uint8)
