"""Random-number-generator plumbing.

Every stochastic component in :mod:`repro` takes an explicit
:class:`numpy.random.Generator` (or a seed convertible to one) so that
experiments are reproducible and components can be re-seeded independently.
These helpers normalise the accepted inputs and derive independent child
generators for parallel components.
"""

from __future__ import annotations

import numpy as np

RngLike = "int | np.random.Generator | np.random.SeedSequence | None"


def ensure_rng(rng=None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for any accepted input.

    ``None`` yields a fresh OS-seeded generator; an ``int`` or
    :class:`~numpy.random.SeedSequence` seeds a new generator; an existing
    generator is passed through unchanged.
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer, np.random.SeedSequence)):
        return np.random.default_rng(rng)
    raise TypeError(
        f"expected None, int, SeedSequence or Generator, got {type(rng).__name__}"
    )


def spawn_rngs(rng, count: int) -> list[np.random.Generator]:
    """Derive ``count`` statistically independent child generators.

    Used when one experiment drives several stochastic subsystems (source,
    fading, noise, traffic) that must not share a stream — re-ordering calls
    in one subsystem must not perturb the others.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    base = ensure_rng(rng)
    if hasattr(base, "spawn"):  # numpy >= 1.25
        return list(base.spawn(count))
    # Fallback for older numpy: derive from random 64-bit integers.
    return [
        np.random.default_rng(int(base.integers(0, 2**63 - 1))) for _ in range(count)
    ]


def random_bits(rng, count: int) -> np.ndarray:
    """Uniform i.i.d. bits as a ``uint8`` array of 0/1 values."""
    if count < 0:
        raise ValueError("count must be non-negative")
    gen = ensure_rng(rng)
    return gen.integers(0, 2, size=count, dtype=np.uint8)
