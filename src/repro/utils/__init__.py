"""Shared utilities: unit conversions, random-number helpers, validation.

Everything in :mod:`repro` works in SI units internally (watts, seconds,
hertz, metres).  The :mod:`repro.utils.units` helpers convert to and from
the logarithmic units (dB, dBm) used at API boundaries and in reports.
"""

from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.units import (
    SPEED_OF_LIGHT,
    db_to_linear,
    dbm_to_watt,
    linear_to_db,
    watt_to_dbm,
    wavelength,
)
from repro.utils.validation import (
    check_in_range,
    check_positive,
    check_power_of_two,
    check_probability,
)

__all__ = [
    "SPEED_OF_LIGHT",
    "check_in_range",
    "check_positive",
    "check_probability",
    "check_power_of_two",
    "db_to_linear",
    "dbm_to_watt",
    "ensure_rng",
    "linear_to_db",
    "spawn_rngs",
    "watt_to_dbm",
    "wavelength",
]
