"""Unit conversions and physical constants.

The simulator keeps every quantity linear and SI internally:

* power in watts,
* time in seconds,
* frequency in hertz,
* distance in metres.

Logarithmic units (dB for ratios, dBm for absolute power) appear only at
API boundaries — configuration objects and report formatting — through the
converters in this module.
"""

from __future__ import annotations

import math

import numpy as np
import numpy.typing as npt

#: Speed of light in vacuum [m/s]; used for wavelength / free-space loss.
SPEED_OF_LIGHT = 299_792_458.0

#: Boltzmann constant [J/K]; used for thermal-noise floors.
BOLTZMANN = 1.380649e-23

#: Standard noise reference temperature [K].
T0_KELVIN = 290.0


def db_to_linear(value_db: npt.ArrayLike) -> npt.NDArray[np.float64]:
    """Convert a ratio in decibels to its linear value.

    Accepts scalars or numpy arrays.

    >>> db_to_linear(3.0103)
    2.0000...
    """
    out: npt.NDArray[np.float64] = np.power(
        10.0, np.asarray(value_db, dtype=np.float64) / 10.0
    )
    return out


def linear_to_db(value: npt.ArrayLike) -> npt.NDArray[np.float64]:
    """Convert a linear power ratio to decibels.

    Raises :class:`ValueError` for non-positive inputs, which have no
    logarithm — callers that want a floor should clamp first.
    """
    arr = np.asarray(value, dtype=np.float64)
    if np.any(arr <= 0):
        raise ValueError("linear_to_db requires strictly positive values")
    out: npt.NDArray[np.float64] = 10.0 * np.log10(arr)
    return out


def dbm_to_watt(value_dbm: npt.ArrayLike) -> npt.NDArray[np.float64]:
    """Convert absolute power in dBm to watts.

    >>> dbm_to_watt(0.0)
    0.001
    """
    out: npt.NDArray[np.float64] = np.power(
        10.0, (np.asarray(value_dbm, dtype=np.float64) - 30.0) / 10.0
    )
    return out


def watt_to_dbm(value_watt: npt.ArrayLike) -> npt.NDArray[np.float64]:
    """Convert absolute power in watts to dBm."""
    arr = np.asarray(value_watt, dtype=np.float64)
    if np.any(arr <= 0):
        raise ValueError("watt_to_dbm requires strictly positive power")
    out: npt.NDArray[np.float64] = 10.0 * np.log10(arr) + 30.0
    return out


def wavelength(frequency_hz: float) -> float:
    """Wavelength [m] of a carrier at ``frequency_hz``.

    >>> round(wavelength(539e6), 3)   # UHF TV channel
    0.556
    """
    if frequency_hz <= 0:
        raise ValueError("frequency must be positive")
    return SPEED_OF_LIGHT / frequency_hz


def thermal_noise_power(bandwidth_hz: float, noise_figure_db: float = 0.0) -> float:
    """Thermal noise power [W] in ``bandwidth_hz`` at the reference
    temperature, degraded by a receiver noise figure.

    ``kTB`` with ``T = 290 K`` gives the familiar −174 dBm/Hz floor.
    """
    if bandwidth_hz <= 0:
        raise ValueError("bandwidth must be positive")
    noise = BOLTZMANN * T0_KELVIN * bandwidth_hz
    return noise * float(db_to_linear(noise_figure_db))


def amplitude_from_power(
    power_watt: npt.ArrayLike,
) -> npt.NDArray[np.float64] | float:
    """Signal amplitude (RMS) corresponding to a mean power.

    For a unit-power complex baseband waveform ``x``, scaling by this
    amplitude yields mean power ``power_watt``.
    """
    arr = np.asarray(power_watt, dtype=np.float64)
    if np.any(arr < 0):
        raise ValueError("power must be non-negative")
    out: npt.NDArray[np.float64] = np.sqrt(arr)
    return float(out) if out.ndim == 0 else out


def snr_db(signal_power_watt: float, noise_power_watt: float) -> float:
    """Signal-to-noise ratio in dB from linear powers."""
    if signal_power_watt <= 0 or noise_power_watt <= 0:
        raise ValueError("powers must be positive")
    return 10.0 * math.log10(signal_power_watt / noise_power_watt)
