"""Argument-validation helpers.

Small, explicit checkers used by configuration dataclasses across the
package.  They raise :class:`ValueError` with the offending parameter name
so configuration mistakes fail loudly at construction time rather than as
silent NaNs deep inside a Monte-Carlo sweep.
"""

from __future__ import annotations


def check_positive(name: str, value: float) -> None:
    """Require ``value > 0``."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")


def check_non_negative(name: str, value: float) -> None:
    """Require ``value >= 0``."""
    if not value >= 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")


def check_probability(name: str, value: float) -> None:
    """Require ``0 <= value <= 1``."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")


def check_in_range(
    name: str,
    value: float,
    low: float,
    high: float,
    *,
    inclusive: bool = True,
) -> None:
    """Require ``low <= value <= high`` (or strict when not inclusive)."""
    ok = low <= value <= high if inclusive else low < value < high
    if not ok:
        bounds = f"[{low}, {high}]" if inclusive else f"({low}, {high})"
        raise ValueError(f"{name} must be in {bounds}, got {value!r}")


def check_power_of_two(name: str, value: int) -> None:
    """Require ``value`` to be a positive integer power of two."""
    if not (isinstance(value, int) and value > 0 and value & (value - 1) == 0):
        raise ValueError(f"{name} must be a positive power of two, got {value!r}")


def check_integer_multiple(name: str, value: float, base: float) -> None:
    """Require ``value`` to be an integer multiple of ``base``.

    Used for sample-rate / bit-rate relationships that the sample-level
    simulator needs to be exact (e.g. samples per bit).
    """
    ratio = value / base
    if abs(ratio - round(ratio)) > 1e-9:
        raise ValueError(
            f"{name}={value!r} must be an integer multiple of {base!r}"
        )
