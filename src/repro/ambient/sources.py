"""Synthetic ambient-RF source models.

The paper's prototype rides on a 539 MHz TV broadcast.  What the envelope-
detecting receiver cares about is not the broadcast's content but its
short-window envelope statistics: a digital TV multiplex is, to an
excellent approximation, band-limited complex Gaussian noise (many
independent OFDM subcarriers), so its envelope is Rayleigh and its power
decorrelates on the scale of ``1 / bandwidth``.  The sources below
reproduce exactly those statistics.

Every source emits complex baseband samples with **unit mean power**; the
channel layer scales by transmit power and path loss.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from repro.utils.rng import ensure_rng
from repro.utils.validation import check_in_range, check_positive


class AmbientSource(ABC):
    """Interface for ambient excitation generators.

    Implementations are stateless with respect to the waveform: each call
    to :meth:`samples` draws a fresh, independent realisation (block
    fading and Monte-Carlo trials rely on this).
    """

    #: Simulation sample rate the waveform is generated at [Hz].
    sample_rate_hz: float

    @abstractmethod
    def samples(self, count: int, rng=None) -> np.ndarray:
        """Return ``count`` complex baseband samples with unit mean power."""

    def mean_power(self) -> float:
        """Nominal mean power of the emitted waveform (always 1.0)."""
        return 1.0


@dataclass
class OfdmLikeSource(AmbientSource):
    """Gaussian multicarrier source — the TV-broadcast stand-in.

    A sum of ``subcarriers`` independently QPSK/Gaussian-modulated tones
    spread uniformly over ``bandwidth_hz`` converges (already for a few
    tens of subcarriers) to band-limited complex Gaussian noise, matching
    the measured statistics of DVB-T/ATSC signals.

    Attributes
    ----------
    sample_rate_hz:
        Simulation sample rate; must be at least the bandwidth.
    bandwidth_hz:
        Occupied bandwidth (6 MHz for ATSC; scaled down in simulation so
        that a bit period still spans many envelope coherence intervals).
    subcarriers:
        Number of modelled subcarriers.  This also sets the chip-mean
        residual fluctuation the receiver integrates against: cross-terms
        between subcarriers closer than ``1/T_chip`` survive chip
        averaging.  The default (32 over the default bandwidth) is
        calibrated so the per-chip residual matches the large
        bandwidth×time product of a real 6 MHz TV mux at 1 kbps — see
        DESIGN.md's substitution table.
    """

    sample_rate_hz: float
    bandwidth_hz: float
    subcarriers: int = 32

    def __post_init__(self) -> None:
        check_positive("sample_rate_hz", self.sample_rate_hz)
        check_positive("bandwidth_hz", self.bandwidth_hz)
        check_positive("subcarriers", self.subcarriers)
        if self.bandwidth_hz > self.sample_rate_hz:
            raise ValueError(
                "bandwidth_hz must not exceed sample_rate_hz "
                f"({self.bandwidth_hz} > {self.sample_rate_hz})"
            )

    def samples(self, count: int, rng=None) -> np.ndarray:
        if count < 0:
            raise ValueError("count must be non-negative")
        gen = ensure_rng(rng)
        n = int(count)
        if n == 0:
            return np.empty(0, dtype=complex)
        # Subcarrier frequencies uniform in [-B/2, B/2]; each carries a
        # complex Gaussian symbol stream held for the whole block (the
        # block is far shorter than an OFDM symbol at simulation scale).
        freqs = np.linspace(
            -self.bandwidth_hz / 2, self.bandwidth_hz / 2, self.subcarriers
        )
        coeff = (
            gen.standard_normal(self.subcarriers)
            + 1j * gen.standard_normal(self.subcarriers)
        ) / np.sqrt(2 * self.subcarriers)
        t = np.arange(n) / self.sample_rate_hz
        wave = np.exp(2j * np.pi * np.outer(t, freqs)) @ coeff
        # Normalise the realised block to unit mean power so trials do not
        # inherit the chi-square spread of the subcarrier draw.
        power = np.mean((wave * wave.conj()).real)
        if power > 0:
            wave /= np.sqrt(power)
        return wave


@dataclass
class ToneSource(AmbientSource):
    """Constant-envelope illuminator (RFID-reader-like carrier).

    A single tone at ``offset_hz`` from the carrier with an optional random
    phase per realisation.  Its envelope never fluctuates, so it isolates
    receiver behaviour from ambient-envelope noise — the best case the
    paper contrasts TV signals against.
    """

    sample_rate_hz: float
    offset_hz: float = 0.0
    random_phase: bool = True

    def __post_init__(self) -> None:
        check_positive("sample_rate_hz", self.sample_rate_hz)
        check_in_range(
            "offset_hz", abs(self.offset_hz), 0.0, self.sample_rate_hz / 2
        )

    def samples(self, count: int, rng=None) -> np.ndarray:
        if count < 0:
            raise ValueError("count must be non-negative")
        gen = ensure_rng(rng)
        n = int(count)
        phase = gen.uniform(0, 2 * np.pi) if self.random_phase else 0.0
        t = np.arange(n) / self.sample_rate_hz
        return np.exp(1j * (2 * np.pi * self.offset_hz * t + phase))


@dataclass
class FilteredNoiseSource(AmbientSource):
    """Band-limited complex Gaussian noise with tunable coherence.

    Generated by moving-average filtering white complex Gaussian noise;
    the envelope coherence time is ``coherence_samples / sample_rate_hz``.
    Used to stress the receiver's averaging windows with slowly-fluctuating
    ambient signals (narrow-band FM radio instead of wide-band TV).
    """

    sample_rate_hz: float
    coherence_samples: int = 4
    _kernel: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        check_positive("sample_rate_hz", self.sample_rate_hz)
        check_positive("coherence_samples", self.coherence_samples)
        kernel = np.ones(int(self.coherence_samples))
        self._kernel = kernel / np.sqrt(kernel.size)

    def samples(self, count: int, rng=None) -> np.ndarray:
        if count < 0:
            raise ValueError("count must be non-negative")
        gen = ensure_rng(rng)
        n = int(count)
        if n == 0:
            return np.empty(0, dtype=complex)
        pad = self._kernel.size - 1
        white = (
            gen.standard_normal(n + pad) + 1j * gen.standard_normal(n + pad)
        ) / np.sqrt(2)
        wave = np.convolve(white, self._kernel, mode="valid")
        power = np.mean((wave * wave.conj()).real)
        if power > 0:
            wave /= np.sqrt(power)
        return wave


def make_source(kind: str, sample_rate_hz: float, **kwargs) -> AmbientSource:
    """Factory keyed by name: ``"ofdm"``, ``"tone"`` or ``"noise"``.

    Convenience for sweep configs that select the source by string.
    """
    kinds = {
        "ofdm": OfdmLikeSource,
        "tone": ToneSource,
        "noise": FilteredNoiseSource,
    }
    if kind not in kinds:
        raise ValueError(f"unknown source kind {kind!r}; choose from {sorted(kinds)}")
    return kinds[kind](sample_rate_hz=sample_rate_hz, **kwargs)
