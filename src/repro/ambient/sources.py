"""Synthetic ambient-RF source models.

The paper's prototype rides on a 539 MHz TV broadcast.  What the envelope-
detecting receiver cares about is not the broadcast's content but its
short-window envelope statistics: a digital TV multiplex is, to an
excellent approximation, band-limited complex Gaussian noise (many
independent OFDM subcarriers), so its envelope is Rayleigh and its power
decorrelates on the scale of ``1 / bandwidth``.  The sources below
reproduce exactly those statistics.

Every source emits complex baseband samples with **unit mean power**; the
channel layer scales by transmit power and path loss.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from repro.utils.rng import ensure_rng
from repro.utils.validation import check_in_range, check_positive


class AmbientSource(ABC):
    """Interface for ambient excitation generators.

    Implementations are stateless with respect to the waveform: each call
    to :meth:`samples` draws a fresh, independent realisation (block
    fading and Monte-Carlo trials rely on this).
    """

    #: Simulation sample rate the waveform is generated at [Hz].
    sample_rate_hz: float

    @abstractmethod
    def samples(self, count: int, rng=None) -> np.ndarray:
        """Return ``count`` complex baseband samples with unit mean power."""

    def batch_samples(self, count: int, rngs) -> np.ndarray:
        """One realisation per generator, stacked into ``(len(rngs), count)``.

        Row ``i`` is **bitwise identical** to ``samples(count, rngs[i])``
        — the contract the batched trial engine depends on.  The base
        implementation simply loops; sources whose synthesis shares
        seed-independent work across realisations override it (see
        :meth:`OfdmLikeSource.batch_samples`).
        """
        rngs = list(rngs)
        if not rngs:
            return np.empty((0, max(int(count), 0)), dtype=complex)
        return np.stack([self.samples(count, rng) for rng in rngs])

    def mean_power(self) -> float:
        """Nominal mean power of the emitted waveform (always 1.0)."""
        return 1.0


#: Module-level cache of the seed-independent OFDM tone matrices,
#: shared across source instances: every sweep point builds a fresh
#: source, but the matrix depends only on the key below, so caching it
#: per instance would pin one ~n×S complex copy per point for the
#: process lifetime.  A handful of entries covers the distinct waveform
#: lengths (data vs frame exchanges) while bounding memory.
_PHASE_MATRIX_CACHE: dict[tuple, np.ndarray] = {}
_PHASE_MATRIX_CACHE_MAX = 4


def _phase_matrix_for(
    n: int, sample_rate_hz: float, bandwidth_hz: float, subcarriers: int
) -> np.ndarray:
    """The ``(n, subcarriers)`` tone matrix ``exp(2jπ t ⊗ f)``."""
    key = (n, sample_rate_hz, bandwidth_hz, subcarriers)
    matrix = _PHASE_MATRIX_CACHE.get(key)
    if matrix is None:
        freqs = np.linspace(-bandwidth_hz / 2, bandwidth_hz / 2, subcarriers)
        t = np.arange(n) / sample_rate_hz
        matrix = np.exp(2j * np.pi * np.outer(t, freqs))
        while len(_PHASE_MATRIX_CACHE) >= _PHASE_MATRIX_CACHE_MAX:
            _PHASE_MATRIX_CACHE.pop(next(iter(_PHASE_MATRIX_CACHE)))
        _PHASE_MATRIX_CACHE[key] = matrix
    return matrix


@dataclass
class OfdmLikeSource(AmbientSource):
    """Gaussian multicarrier source — the TV-broadcast stand-in.

    A sum of ``subcarriers`` independently QPSK/Gaussian-modulated tones
    spread uniformly over ``bandwidth_hz`` converges (already for a few
    tens of subcarriers) to band-limited complex Gaussian noise, matching
    the measured statistics of DVB-T/ATSC signals.

    Attributes
    ----------
    sample_rate_hz:
        Simulation sample rate; must be at least the bandwidth.
    bandwidth_hz:
        Occupied bandwidth (6 MHz for ATSC; scaled down in simulation so
        that a bit period still spans many envelope coherence intervals).
    subcarriers:
        Number of modelled subcarriers.  This also sets the chip-mean
        residual fluctuation the receiver integrates against: cross-terms
        between subcarriers closer than ``1/T_chip`` survive chip
        averaging.  The default (32 over the default bandwidth) is
        calibrated so the per-chip residual matches the large
        bandwidth×time product of a real 6 MHz TV mux at 1 kbps — see
        DESIGN.md's substitution table.
    """

    sample_rate_hz: float
    bandwidth_hz: float
    subcarriers: int = 32

    def __post_init__(self) -> None:
        check_positive("sample_rate_hz", self.sample_rate_hz)
        check_positive("bandwidth_hz", self.bandwidth_hz)
        check_positive("subcarriers", self.subcarriers)
        if self.bandwidth_hz > self.sample_rate_hz:
            raise ValueError(
                "bandwidth_hz must not exceed sample_rate_hz "
                f"({self.bandwidth_hz} > {self.sample_rate_hz})"
            )

    def _realize(self, phase: np.ndarray, gen) -> np.ndarray:
        """One block from a prebuilt phase matrix (shared by both paths)."""
        coeff = (
            gen.standard_normal(self.subcarriers)
            + 1j * gen.standard_normal(self.subcarriers)
        ) / np.sqrt(2 * self.subcarriers)
        wave = phase @ coeff
        # Normalise the realised block to unit mean power so trials do not
        # inherit the chi-square spread of the subcarrier draw.
        power = np.mean((wave * wave.conj()).real)
        if power > 0:
            wave /= np.sqrt(power)
        return wave

    def samples(self, count: int, rng=None) -> np.ndarray:
        if count < 0:
            raise ValueError("count must be non-negative")
        gen = ensure_rng(rng)
        n = int(count)
        if n == 0:
            return np.empty(0, dtype=complex)
        # Subcarrier frequencies uniform in [-B/2, B/2]; each carries a
        # complex Gaussian symbol stream held for the whole block (the
        # block is far shorter than an OFDM symbol at simulation scale).
        # The matrix is rebuilt per call on purpose: the scalar API stays
        # allocation-free; only the batch path amortises it through the
        # bounded module-level cache.
        freqs = np.linspace(
            -self.bandwidth_hz / 2, self.bandwidth_hz / 2, self.subcarriers
        )
        t = np.arange(n) / self.sample_rate_hz
        return self._realize(np.exp(2j * np.pi * np.outer(t, freqs)), gen)

    def batch_samples(self, count: int, rngs) -> np.ndarray:
        """Stacked realisations sharing one phase matrix across lanes.

        Each lane is still a lane-local generator draw plus the same
        matrix–vector product the scalar path performs, so rows stay
        bitwise identical to per-lane :meth:`samples` calls while the
        dominant ``exp`` cost is paid once per batch.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        rngs = list(rngs)
        n = int(count)
        if not rngs or n == 0:
            # Matches the scalar path: samples(0, rng) returns before
            # any generator draw, so there is no stream to advance.
            return np.empty((len(rngs), n), dtype=complex)
        phase = _phase_matrix_for(
            n, self.sample_rate_hz, self.bandwidth_hz, self.subcarriers
        )
        out = np.empty((len(rngs), n), dtype=complex)
        for lane, rng in enumerate(rngs):
            out[lane] = self._realize(phase, ensure_rng(rng))
        return out


@dataclass
class ToneSource(AmbientSource):
    """Constant-envelope illuminator (RFID-reader-like carrier).

    A single tone at ``offset_hz`` from the carrier with an optional random
    phase per realisation.  Its envelope never fluctuates, so it isolates
    receiver behaviour from ambient-envelope noise — the best case the
    paper contrasts TV signals against.
    """

    sample_rate_hz: float
    offset_hz: float = 0.0
    random_phase: bool = True

    def __post_init__(self) -> None:
        check_positive("sample_rate_hz", self.sample_rate_hz)
        check_in_range(
            "offset_hz", abs(self.offset_hz), 0.0, self.sample_rate_hz / 2
        )

    def samples(self, count: int, rng=None) -> np.ndarray:
        if count < 0:
            raise ValueError("count must be non-negative")
        gen = ensure_rng(rng)
        n = int(count)
        phase = gen.uniform(0, 2 * np.pi) if self.random_phase else 0.0
        t = np.arange(n) / self.sample_rate_hz
        return np.exp(1j * (2 * np.pi * self.offset_hz * t + phase))

    def batch_samples(self, count: int, rngs) -> np.ndarray:
        """Stacked tone realisations; zero-offset tones fill by value.

        At ``offset_hz == 0`` the scalar argument ``2π·0·t + phase`` is a
        constant array, so one per-lane ``exp`` fills the whole row with
        the exact sample value the scalar path computes.  Non-zero
        offsets fall back to a per-lane ``exp`` over the full window.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        rngs = list(rngs)
        n = int(count)
        out = np.empty((len(rngs), n), dtype=complex)
        t = np.arange(n) / self.sample_rate_hz
        for lane, rng in enumerate(rngs):
            gen = ensure_rng(rng)
            # Drawn even for n == 0: the scalar path consumes the phase
            # before returning its empty array, and lane generators must
            # stay stream-for-stream aligned with it.
            phase = gen.uniform(0, 2 * np.pi) if self.random_phase else 0.0
            if n == 0:
                continue
            if self.offset_hz == 0.0:
                head = np.exp(1j * (2 * np.pi * self.offset_hz * t[:1] + phase))
                out[lane] = head[0]
            else:
                out[lane] = np.exp(
                    1j * (2 * np.pi * self.offset_hz * t + phase)
                )
        return out


@dataclass
class FilteredNoiseSource(AmbientSource):
    """Band-limited complex Gaussian noise with tunable coherence.

    Generated by moving-average filtering white complex Gaussian noise;
    the envelope coherence time is ``coherence_samples / sample_rate_hz``.
    Used to stress the receiver's averaging windows with slowly-fluctuating
    ambient signals (narrow-band FM radio instead of wide-band TV).
    """

    sample_rate_hz: float
    coherence_samples: int = 4
    _kernel: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        check_positive("sample_rate_hz", self.sample_rate_hz)
        check_positive("coherence_samples", self.coherence_samples)
        kernel = np.ones(int(self.coherence_samples))
        self._kernel = kernel / np.sqrt(kernel.size)

    def samples(self, count: int, rng=None) -> np.ndarray:
        if count < 0:
            raise ValueError("count must be non-negative")
        gen = ensure_rng(rng)
        n = int(count)
        if n == 0:
            return np.empty(0, dtype=complex)
        pad = self._kernel.size - 1
        white = (
            gen.standard_normal(n + pad) + 1j * gen.standard_normal(n + pad)
        ) / np.sqrt(2)
        wave = np.convolve(white, self._kernel, mode="valid")
        power = np.mean((wave * wave.conj()).real)
        if power > 0:
            wave /= np.sqrt(power)
        return wave


def make_source(kind: str, sample_rate_hz: float, **kwargs) -> AmbientSource:
    """Factory keyed by name: ``"ofdm"``, ``"tone"`` or ``"noise"``.

    Convenience for sweep configs that select the source by string.
    """
    kinds = {
        "ofdm": OfdmLikeSource,
        "tone": ToneSource,
        "noise": FilteredNoiseSource,
    }
    if kind not in kinds:
        raise ValueError(f"unknown source kind {kind!r}; choose from {sorted(kinds)}")
    return kinds[kind](sample_rate_hz=sample_rate_hz, **kwargs)
