"""Ambient RF excitation sources.

Ambient backscatter devices have no transmitter of their own: they ride on
an ambient broadcast signal (a TV tower in the paper's prototype).  This
package provides synthetic complex-baseband sources with the statistics
that matter to the envelope-detecting receiver:

* :class:`OfdmLikeSource` — Gaussian multicarrier, the stand-in for a real
  DVB/ATSC multiplex (Rayleigh envelope, flat in band);
* :class:`ToneSource` — constant-envelope carrier, the best case for
  envelope detection (an RFID-reader-like illuminator);
* :class:`FilteredNoiseSource` — band-limited Gaussian noise with a
  configurable coherence time, for stressing the averaging windows.

All sources emit unit-mean-power waveforms; absolute power is applied by
the channel layer from the source EIRP and path loss.
"""

from repro.ambient.sources import (
    AmbientSource,
    FilteredNoiseSource,
    OfdmLikeSource,
    ToneSource,
    make_source,
)
from repro.ambient.spectrum import coherence_samples, occupied_bandwidth

__all__ = [
    "AmbientSource",
    "FilteredNoiseSource",
    "OfdmLikeSource",
    "ToneSource",
    "coherence_samples",
    "make_source",
    "occupied_bandwidth",
]
