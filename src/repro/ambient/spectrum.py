"""Spectral measurement helpers for ambient sources.

Used by tests and by the link-budget bench to verify that a synthetic
source actually has the bandwidth/coherence the receiver design assumes.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_positive


def occupied_bandwidth(
    x: np.ndarray, sample_rate_hz: float, fraction: float = 0.99
) -> float:
    """Bandwidth [Hz] containing ``fraction`` of the waveform's power.

    Computed from the periodogram of the complex baseband samples; the
    result is the width of the smallest symmetric-percentile frequency
    interval holding the requested power fraction.
    """
    check_positive("sample_rate_hz", sample_rate_hz)
    if not 0.0 < fraction <= 1.0:
        raise ValueError("fraction must be in (0, 1]")
    arr = np.asarray(x, dtype=complex)
    if arr.size < 8:
        raise ValueError("need at least 8 samples to estimate bandwidth")
    spec = np.abs(np.fft.fftshift(np.fft.fft(arr))) ** 2
    freqs = np.fft.fftshift(np.fft.fftfreq(arr.size, d=1.0 / sample_rate_hz))
    total = spec.sum()
    if total == 0:
        return 0.0
    cdf = np.cumsum(spec) / total
    tail = (1.0 - fraction) / 2.0
    lo = freqs[np.searchsorted(cdf, tail)]
    hi = freqs[min(np.searchsorted(cdf, 1.0 - tail), arr.size - 1)]
    return float(hi - lo)


def coherence_samples(x: np.ndarray, threshold: float = 0.5) -> int:
    """Envelope-power coherence length in samples.

    The first lag at which the autocorrelation of the (mean-removed)
    instantaneous power drops below ``threshold`` of its zero-lag value.
    The receiver's smoothing and averaging windows must exceed this for
    the envelope statistics to average out.
    """
    if not 0.0 < threshold < 1.0:
        raise ValueError("threshold must be in (0, 1)")
    arr = np.asarray(x)
    power = (arr * np.conj(arr)).real if np.iscomplexobj(arr) else arr ** 2
    p = power - power.mean()
    if p.size < 4 or np.allclose(p, 0):
        return 1
    # FFT autocorrelation, normalised to lag zero.
    n = int(2 ** np.ceil(np.log2(2 * p.size)))
    spec = np.fft.rfft(p, n)
    acorr = np.fft.irfft(spec * np.conj(spec))[: p.size]
    acorr /= acorr[0]
    below = np.nonzero(acorr < threshold)[0]
    return int(below[0]) if below.size else int(p.size)
