"""Setup shim for environments without the `wheel` package.

`pip install -e .` uses PEP 660 and needs `wheel`; offline boxes that lack
it can fall back to `python setup.py develop`.
"""
from setuptools import setup

setup()
